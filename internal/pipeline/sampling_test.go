package pipeline

import (
	"math"
	"testing"

	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func TestSamplingWithDefaults(t *testing.T) {
	sp := Sampling{Enabled: true}.WithDefaults(300_000)
	if sp.Intervals != 6 || sp.IntervalInsts != 6000 || sp.WarmupInsts != 2000 {
		t.Fatalf("unexpected defaults: %+v", sp)
	}
	if err := sp.Validate(300_000); err != nil {
		t.Fatal(err)
	}
	if got := sp.Coverage(300_000); math.Abs(got-0.12) > 1e-9 {
		t.Fatalf("coverage = %v, want 0.12", got)
	}
	// Disabled sampling resolves to itself and covers everything.
	z := Sampling{}.WithDefaults(300_000)
	if z != (Sampling{}) {
		t.Fatalf("disabled sampling mutated by WithDefaults: %+v", z)
	}
	if got := z.Coverage(300_000); got != 1 {
		t.Fatalf("disabled coverage = %v, want 1", got)
	}
}

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		sp      Sampling
		measure uint64
		ok      bool
	}{
		{Sampling{Enabled: true, Intervals: 4, IntervalInsts: 100, WarmupInsts: 50}, 1000, true},
		{Sampling{Enabled: true, Intervals: 4, IntervalInsts: 240, WarmupInsts: 50}, 1000, false}, // window > stride
		{Sampling{Enabled: true, Intervals: 0, IntervalInsts: 100}, 1000, false},
		{Sampling{Enabled: true, Intervals: 4, IntervalInsts: 0}, 1000, false},
		{Sampling{}, 1000, true}, // disabled is always valid
	}
	for i, c := range cases {
		err := c.sp.Validate(c.measure)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v, %d) err=%v, want ok=%v", i, c.sp, c.measure, err, c.ok)
		}
	}
}

func TestIntervalLeadDeterministicAndInStride(t *testing.T) {
	sp := Sampling{Enabled: true, Intervals: 6, IntervalInsts: 6000, WarmupInsts: 2000}
	const measure = 300_000
	stride := uint64(measure) / uint64(sp.Intervals)
	seen := map[uint64]bool{}
	for i := 0; i < sp.Intervals; i++ {
		pre, post := sp.IntervalLead(i, measure)
		pre2, post2 := sp.IntervalLead(i, measure)
		if pre != pre2 || post != post2 {
			t.Fatalf("interval %d: IntervalLead not deterministic", i)
		}
		if pre+post+sp.WarmupInsts+sp.IntervalInsts != stride {
			t.Fatalf("interval %d: window does not tile the stride (pre=%d post=%d)", i, pre, post)
		}
		seen[pre] = true
	}
	if len(seen) < sp.Intervals-1 {
		t.Fatalf("offsets barely vary: %v — low-discrepancy placement broken", seen)
	}
}

// TestFastForwardKeepsOracleContinuity: after an architectural skip the
// cycle simulator must keep consuming the walker stream exactly where the
// fast-forward left it — no dropped or duplicated records.
func TestFastForwardKeepsOracleContinuity(t *testing.T) {
	wl := buildWL(t, "bm_ds")
	sim, err := New(DefaultConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.NewWalker(wl)
	var mismatches int
	sim.OnConsume = func(rec trace.Rec) {
		want, _ := ref.Next()
		if rec != want && mismatches < 3 {
			t.Errorf("consumed %+v, walker says %+v", rec, want)
			mismatches++
		}
	}
	if err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if got := sim.FastForward(20_000); got != 20_000 {
		t.Fatalf("FastForward consumed %d records, want 20000", got)
	}
	if err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
	sim.FastForward(1_000)
	if err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
}

func TestRunSampledDeterministic(t *testing.T) {
	sp := Sampling{Enabled: true, Intervals: 4, IntervalInsts: 2000, WarmupInsts: 500}
	run := func() Metrics {
		wl := buildWL(t, "bm_ds")
		sim, err := New(DefaultConfig(), wl)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.RunSampled(20_000, 60_000, sp)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sampled runs diverge:\n a=%+v\n b=%+v", a, b)
	}
}

func TestRunSampledRejectsZeroMeasure(t *testing.T) {
	wl := buildWL(t, "bm_ds")
	sim, err := New(DefaultConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunSampled(1000, 0, Sampling{Enabled: true}); err == nil {
		t.Fatal("RunSampled accepted a zero measurement interval")
	}
	if _, err := sim.RunMeasured(1000, 0); err == nil {
		t.Fatal("RunMeasured accepted a zero measurement interval")
	}
}

func TestRunSampledDisabledMatchesFull(t *testing.T) {
	wl := buildWL(t, "bm_ds")
	sim, err := New(DefaultConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunSampled(10_000, 30_000, Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	wl2 := buildWL(t, "bm_ds")
	sim2, err := New(DefaultConfig(), wl2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim2.RunMeasured(10_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("disabled sampling diverges from RunMeasured:\n got=%+v\nwant=%+v", got, want)
	}
}

// TestRunSampledTracksFull is the error-bound sanity check at test scale:
// the sampled estimate of a full run must land within a loose tolerance of
// the full metrics (the tight bounds are measured and documented by the
// cmd/uopexp -sample-validate harness; this guards against gross breakage
// like unwarmed predictors or mis-scaled extrapolation).
func TestRunSampledTracksFull(t *testing.T) {
	wl := buildWL(t, "bm_ds")
	sim, err := New(DefaultConfig(), wl)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.RunMeasured(50_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	wl2 := buildWL(t, "bm_ds")
	sim2, err := New(DefaultConfig(), wl2)
	if err != nil {
		t.Fatal(err)
	}
	samp, err := sim2.RunSampled(50_000, 150_000, Sampling{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	relErr := func(s, f float64) float64 {
		if f == 0 {
			return 0
		}
		return math.Abs(s-f) / f
	}
	if e := relErr(samp.UPC, full.UPC); e > 0.15 {
		t.Errorf("UPC off by %.1f%% (sampled %.3f, full %.3f)", e*100, samp.UPC, full.UPC)
	}
	if e := relErr(samp.OCHitRate, full.OCHitRate); e > 0.15 {
		t.Errorf("OC hit rate off by %.1f%% (sampled %.3f, full %.3f)", e*100, samp.OCHitRate, full.OCHitRate)
	}
	if e := relErr(float64(samp.Insts), float64(full.Insts)); e > 0.01 {
		t.Errorf("extrapolated insts off by %.1f%% (sampled %d, full %d)", e*100, samp.Insts, full.Insts)
	}
	if samp.Cycles <= 0 || samp.Mispredicts == 0 {
		t.Errorf("degenerate sampled metrics: %+v", samp)
	}
}

func TestExtrapolateScalesCounts(t *testing.T) {
	agg := Snapshot{Cycle: 1000, RetiredUops: 4000, Insts: 2000, UopsOC: 3000, UopsIC: 500, UopsLC: 500, OCLookups: 100, OCHits: 90}
	m := Extrapolate(agg, 20_000) // 10x the measured 2000 insts
	if m.Insts != 20_000 || m.Cycles != 10_000 || m.UopsOC != 30_000 {
		t.Fatalf("bad scaling: %+v", m)
	}
	if math.Abs(m.UPC-4.0) > 1e-9 {
		t.Fatalf("UPC must be the unscaled ratio, got %v", m.UPC)
	}
	if math.Abs(m.OCHitRate-0.9) > 1e-9 {
		t.Fatalf("OCHitRate must be the unscaled ratio, got %v", m.OCHitRate)
	}
}

func TestAddSnapshotDeltaCoversAllFields(t *testing.T) {
	var agg Snapshot
	a := Snapshot{}
	b := Snapshot{Cycle: 5, RetiredUops: 1, UopsOC: 2, UopsIC: 3, UopsLC: 4, Insts: 5, Branches: 6,
		Mispredicts: 7, MispLatSum: 8, DecRedirects: 9, Resyncs: 10, DecodedInsts: 11,
		DecoderEnergy: 1.5, OCLookups: 12, OCHits: 13, OCFills: 14}
	AddSnapshotDelta(&agg, a, b)
	AddSnapshotDelta(&agg, a, b)
	if agg.Cycle != 10 || agg.Branches != 12 || agg.DecoderEnergy != 3.0 || agg.OCFills != 28 {
		t.Fatalf("delta accumulation wrong: %+v", agg)
	}
}
