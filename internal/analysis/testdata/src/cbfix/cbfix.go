// Package cbfix exercises the unlockedcallback analyzer: calls through
// interface- and func-typed fields while a mutex is held, versus the
// sanctioned copy-release-call pattern.
package cbfix

import "sync"

type Hook interface {
	Notify(key string)
}

type store struct {
	mu   sync.Mutex
	data map[string]int
	hook Hook
	emit func(key string)
}

func (s *store) PutBad(key string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = v
	s.hook.Notify(key) // want `call through interface-typed field s.hook while holding s.mu`
	s.emit(key)        // want `call through func-typed field s.emit while holding s.mu`
}

// PutGood is the contract's shape: copy the hook under the lock, release,
// then call the local.
func (s *store) PutGood(key string, v int) {
	s.mu.Lock()
	s.data[key] = v
	h := s.hook
	s.mu.Unlock()
	if h != nil {
		h.Notify(key)
	}
}

// flushLocked runs with mu held per its contract, so the hook call inside
// it is exactly the re-entrancy hazard the analyzer exists for.
//
//uopvet:locked mu -- callers lock before flushing
func (s *store) flushLocked(key string) {
	s.hook.Notify(key) // want `call through interface-typed field s.hook while holding s.mu`
}

type logger struct{}

func (logger) Notify(string) {}

type static struct {
	mu  sync.Mutex
	log logger
}

// Put calls a concrete method on a struct-typed field: the callee is
// statically known, not a dynamic call site.
func (s *static) Put(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Notify(key)
}
