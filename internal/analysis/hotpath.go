package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath guards the allocation discipline of functions marked
// //uopvet:hotpath — the per-cycle step, the fetch-group item pool, and the
// BTB scratch path whose zero-alloc behaviour PR 1 and PR 3 measured into
// the AllocsPerRun tests. It flags the obvious per-cycle allocators:
//
//   - fmt string builders (Sprintf, Sprint, Sprintln, Errorf) anywhere in a
//     hot function — each call allocates at least the result,
//   - string concatenation inside a loop, which reallocates the buffer
//     every iteration, and
//   - composite literals escaping to the heap in a loop: &T{...}, or a
//     T{...} / &T{...} argument to append.
//
// The analyzer is deliberately shallow — the AllocsPerRun tests remain the
// ground truth — but it catches the regressions reviewers actually write.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag obvious per-cycle allocators inside //uopvet:hotpath functions",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// loopRanges collects the position ranges of every for/range statement in
// body, so later checks can ask "is this node inside a loop".
func loopRanges(body *ast.BlockStmt) [][2]token.Pos {
	var loops [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, [2]token.Pos{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	return loops
}

func inAny(loops [][2]token.Pos, pos token.Pos) bool {
	for _, l := range loops {
		if pos >= l[0] && pos < l[1] {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	loops := loopRanges(fd.Body)
	info := pass.Pkg.Info
	isString := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					switch fn.Name() {
					case "Sprintf", "Sprint", "Sprintln", "Errorf":
						pass.Reportf(n.Pos(),
							"fmt.%s allocates on every call; %s is marked //uopvet:hotpath, so build the value without fmt (or report through a pre-registered stats instrument)", fn.Name(), fd.Name.Name)
					}
				}
			}
			if isBuiltinAppend(pass, n) && inAny(loops, n.Pos()) {
				// &T{...} args are covered by the UnaryExpr case below.
				for _, arg := range n.Args[1:] {
					if _, ok := arg.(*ast.CompositeLit); ok {
						pass.Reportf(arg.Pos(),
							"appending a composite literal in a loop inside hot function %s allocates per iteration; reuse a pooled slice or write into preallocated storage", fd.Name.Name)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && inAny(loops, n.Pos()) {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite literal in a loop inside hot function %s escapes to the heap per iteration; reuse a pooled object instead", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && inAny(loops, n.Pos()) && isString(n.X) {
				pass.Reportf(n.Pos(),
					"string concatenation in a loop inside hot function %s reallocates every iteration; use a reused []byte or strings.Builder outside the loop", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && inAny(loops, n.Pos()) && len(n.Lhs) == 1 && isString(n.Lhs[0]) {
				pass.Reportf(n.Pos(),
					"string += in a loop inside hot function %s reallocates every iteration; use a reused []byte or strings.Builder outside the loop", fd.Name.Name)
			}
		}
		return true
	})
}
