// Package pipeline wires every substrate into the whole-core, cycle-level
// simulator of Figure 1: a decoupled branch prediction unit emitting
// prediction windows, three uop supply paths (loop cache, uop cache,
// I-cache + x86 decoder), the micro-op queue, and the out-of-order back end
// — with wrong-path fetch past unresolved mispredictions, decode-time
// redirects for undiscovered direct jumps, and uop cache fills (including
// wrong-path pollution) through the accumulation buffer.
package pipeline

import (
	"fmt"

	"uopsim/internal/backend"
	"uopsim/internal/bpred"
	"uopsim/internal/decode"
	"uopsim/internal/fetch"
	"uopsim/internal/isa"
	"uopsim/internal/loopcache"
	"uopsim/internal/mem"
	"uopsim/internal/power"
	"uopsim/internal/program"
	"uopsim/internal/stats"
	"uopsim/internal/trace"
	"uopsim/internal/uopcache"
	"uopsim/internal/uopq"
	"uopsim/internal/workload"
)

// SimVersion names the simulated-behaviour generation of this simulator.
// It is part of every design-point fingerprint (internal/runcache), making
// a version bump the run-cache invalidation rule: bump it in the same
// change that regenerates testdata/golden_metrics.json — i.e. whenever a
// commit intentionally alters simulated behaviour — and every previously
// persisted blob stops being addressed. Pure optimizations that keep the
// golden metrics bit-identical must NOT bump it; that is what lets cached
// runs survive performance work.
const SimVersion = "uopsim-1"

// Config assembles the whole-core configuration (Table I defaults via
// DefaultConfig).
type Config struct {
	// DispatchWidth is uops/cycle from the uop queue to the back end (6).
	DispatchWidth int
	// UopQueueSize is the micro-op queue capacity (120).
	UopQueueSize int
	// DecodeWidth is decoded instructions per cycle (4).
	DecodeWidth int
	// DecodeLatency is the decode pipeline depth in cycles (3).
	DecodeLatency int
	// ICFetchLatency is the I-cache read + pick stage depth ahead of decode.
	ICFetchLatency int
	// ICFetchBytes is the fetch bandwidth (32 bytes/cycle).
	ICFetchBytes int
	// OCLatency is the uop cache read pipeline depth.
	OCLatency int
	// OCSwitchPenalty is the bubble when the fetch path falls from the uop
	// cache to the I-cache mid-window.
	OCSwitchPenalty int
	// PWQueueSize bounds how far the BPU runs ahead of fetch.
	PWQueueSize int

	// Fetch configures prediction window construction.
	Fetch fetch.Config
	// UopCache configures the uop cache structure and fill policy.
	UopCache uopcache.Config
	// Limits configures entry construction (CLASP = MaxICLines 2).
	Limits uopcache.BuildLimits
	// Loop configures the loop cache.
	Loop loopcache.Config
	// Mem configures the cache hierarchy.
	Mem mem.Config
	// Backend configures the out-of-order engine.
	Backend backend.Config
	// AccumBufEntries is the accumulation buffer capacity in entries.
	AccumBufEntries int
}

// DefaultConfig returns the Table I machine with a baseline uop cache.
func DefaultConfig() Config {
	return Config{
		DispatchWidth:   6,
		UopQueueSize:    120,
		DecodeWidth:     4,
		DecodeLatency:   3,
		ICFetchLatency:  2,
		ICFetchBytes:    32,
		OCLatency:       2,
		OCSwitchPenalty: 1,
		PWQueueSize:     16,
		Fetch:           fetch.DefaultConfig(),
		UopCache:        uopcache.DefaultConfig(),
		Limits:          uopcache.DefaultLimits(),
		Loop:            loopcache.DefaultConfig(),
		Mem:             mem.DefaultConfig(),
		Backend:         backend.DefaultConfig(),
		AccumBufEntries: 2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.UopCache.Validate(); err != nil {
		return err
	}
	if c.DispatchWidth < 1 || c.DecodeWidth < 1 || c.UopQueueSize < 8 {
		return fmt.Errorf("pipeline: width/queue configuration invalid")
	}
	if c.Limits.MaxICLines > 1 && c.UopCache.MaxICLines != c.Limits.MaxICLines {
		return fmt.Errorf("pipeline: CLASP span mismatch between Limits (%d) and UopCache (%d)",
			c.Limits.MaxICLines, c.UopCache.MaxICLines)
	}
	return nil
}

// fItem is one fetched instruction flowing through a front-end pipe.
type fItem struct {
	seq        uint64
	inst       *isa.Inst
	rec        trace.Rec
	correct    bool
	fetchCycle int64
	src        uopq.Source

	// predictedNext is the fetch address the front end follows after this
	// instruction.
	predictedNext uint64
	// misp marks a correct-path branch detected mispredicted at fetch
	// (redirect fires when it resolves in the back end).
	misp bool
	// decRedirect marks a BTB-unknown direct unconditional transfer
	// (redirect fires when it exits decode).
	decRedirect bool

	// Builder context (decoder path only).
	pwID       uint64
	pwInstance uint64
	pwEndTaken bool
}

type fGroup struct {
	items []fItem
	uops  int
}

type pendingRedirect struct {
	fire       int64
	target     uint64
	fetchCycle int64
	isDecode   bool
}

// Sim is one simulation instance: a workload bound to a configured core.
type Sim struct {
	cfg  Config
	prog *program.Program
	wl   *workload.Workload

	oracle trace.Stream
	orHead trace.Rec
	orOK   bool

	pred *bpred.Predictor
	pwb  *fetch.Builder
	hier *mem.Hierarchy
	oc   *uopcache.Cache
	ocb  *uopcache.Builder
	lc   *loopcache.LoopCache
	be   *backend.Backend
	uq   *uopq.Queue
	dec  *power.DecoderModel

	ocPipe *decode.Pipe[fGroup]
	dcPipe *decode.Pipe[fItem]
	lcPipe *decode.Pipe[fGroup]

	cycle int64

	// Fetch-side state. The PW queue is a fixed ring (head/count over pwQ)
	// and the current window lives in pwCur: both avoid the per-window heap
	// traffic a sliced queue and an escaping copy would cause on this path.
	seq          uint64
	nextPopSeq   uint64
	pwQ          []fetch.PW // ring buffer, capacity PWQueueSize
	pwHead       int
	pwCount      int
	pwCur        fetch.PW  // backing store for pw
	pw           *fetch.PW // nil or &pwCur
	pwFromOC     bool      // current PW has had at least one OC hit (switch penalty)
	pwMode       fetchMode
	curAddr      uint64
	fetchAddr    uint64
	bpuPC        uint64
	bpuStall     int64
	fetchStall   int64
	lastICLine   uint64
	lcRemaining  []fItem // loop-cache emission backlog for the current PW
	lcHead       int     // consume cursor into lcRemaining
	wrongPath    bool
	nextOraclePC uint64

	// itemFree recycles fGroup item slices between front-end pipe pushes
	// and drains (groups dropped by a flush are simply reallocated later).
	itemFree [][]fItem

	redirect        pendingRedirect
	redirectPending bool

	// OnConsume, when set, observes every correct-path instruction in
	// program order as the front end consumes it (testing hook: the
	// observed sequence must equal the architectural walker's stream).
	OnConsume func(trace.Rec)

	m   counters
	reg *stats.Registry
	obs Observer

	// sampling, when non-nil, backs the sampling.* gauges a RunSampled
	// call registered (see noteSampling).
	sampling *samplingInfo
}

// setMode switches the current window's supply path, announcing the switch
// to an attached observer.
func (s *Sim) setMode(c int64, m fetchMode) {
	if s.obs != nil && m != s.pwMode {
		s.obs.Event(Event{Cycle: c, Kind: EvPathSwitch, A: int32(s.pwMode), B: int32(m)})
	}
	s.pwMode = m
}

type fetchMode uint8

const (
	modeOC fetchMode = iota
	modeIC
	modeLC
)

// New builds a simulator for the workload with a private uop cache.
func New(cfg Config, wl *workload.Workload) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ocCache, err := uopcache.New(cfg.UopCache)
	if err != nil {
		return nil, err
	}
	return NewWithCache(cfg, wl, ocCache)
}

// NewReplay builds a simulator that replays a pre-recorded dynamic trace
// (e.g. one written by cmd/tracegen) instead of walking the workload's
// behaviours. The workload still supplies the static program the trace
// references. Replayed traces are finite; use RunToEnd.
func NewReplay(cfg Config, wl *workload.Workload, stream trace.Stream) (*Sim, error) {
	ocCache, err := uopcache.New(cfg.UopCache)
	if err != nil {
		return nil, err
	}
	return newSim(cfg, wl, stream, ocCache)
}

// NewWithCache builds a simulator around an externally owned uop cache. Two
// hardware threads of an SMT core pass the same cache so their entries
// compete for the shared capacity (§V-B1's motivation for PWAC). Callers
// must ensure the threads' code regions do not alias (workload.BuildAt).
func NewWithCache(cfg Config, wl *workload.Workload, ocCache *uopcache.Cache) (*Sim, error) {
	return newSim(cfg, wl, workload.NewWalker(wl), ocCache)
}

func newSim(cfg Config, wl *workload.Workload, oracle trace.Stream, ocCache *uopcache.Cache) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier := mem.New(cfg.Mem)
	s := &Sim{
		cfg:    cfg,
		prog:   wl.Program,
		wl:     wl,
		oracle: oracle,
		pred:   bpred.New(),
		hier:   hier,
		oc:     ocCache,
		lc:     loopcache.New(cfg.Loop),
		be:     backend.New(cfg.Backend, hier),
		uq:     uopq.NewQueue(cfg.UopQueueSize),
		dec:    power.DefaultDecoderModel(),
		ocPipe: decode.NewPipe[fGroup](cfg.OCLatency, 1, 8),
		dcPipe: decode.NewPipe[fItem](cfg.ICFetchLatency+cfg.DecodeLatency, cfg.DecodeWidth, 64),
		lcPipe: decode.NewPipe[fGroup](1, 1, 4),
		pwQ:    make([]fetch.PW, maxInt(cfg.PWQueueSize, 1)),
	}
	s.pwb = fetch.NewBuilder(cfg.Fetch, s.pred)
	s.ocb = uopcache.NewBuilder(cfg.Limits, s.oc.Stats, func(e *uopcache.Entry) {
		s.oc.Fill(e)
		if s.obs != nil {
			s.obs.Event(Event{Cycle: s.cycle, Kind: EvFill, Addr: e.Start, A: int32(e.NumUops)})
		}
	})
	s.registerMetrics()

	s.advanceOracle()
	entry := s.prog.Entry
	s.fetchAddr, s.bpuPC, s.curAddr = entry, entry, entry
	s.nextOraclePC = entry
	s.lastICLine = ^uint64(0)
	return s, nil
}

func (s *Sim) advanceOracle() {
	s.orHead, s.orOK = s.oracle.Next()
}

// registerMetrics mounts every component's instruments into the Sim's
// registry. All registration happens here, once, at construction; the hot
// path keeps touching the same plain-value instruments directly.
func (s *Sim) registerMetrics() {
	s.reg = stats.NewRegistry()
	s.reg.RegisterGauge("pipeline.cycle", func() float64 { return float64(s.cycle) })
	s.m.register(s.reg)
	s.oc.Stats.Register(s.reg.Scope("oc"))
	s.pred.RegisterMetrics(s.reg.Scope("bpu"))
	s.pwb.RegisterMetrics(s.reg.Scope("bpu.pw"))
	s.lc.RegisterMetrics(s.reg.Scope("lc"))
	s.hier.RegisterMetrics(s.reg.Scope("mem"))
	s.uq.RegisterMetrics(s.reg.Scope("uopq"))
	s.be.RegisterMetrics(s.reg.Scope("backend"))
	s.dec.RegisterMetrics(s.reg.Scope("power.decoder"))
	pipes := s.reg.Scope("decode.pipe")
	s.ocPipe.RegisterMetrics(pipes.Scope("oc"))
	s.dcPipe.RegisterMetrics(pipes.Scope("dc"))
	s.lcPipe.RegisterMetrics(pipes.Scope("lc"))
}

// Registry exposes the Sim's metrics registry (custom instruments, e.g. the
// occupancy observer, register here; exporters snapshot it).
func (s *Sim) Registry() *stats.Registry { return s.reg }

// StatsSnapshot reads every registered instrument.
func (s *Sim) StatsSnapshot() stats.Snapshot { return s.reg.Snapshot() }

// Cycle returns the current cycle.
func (s *Sim) Cycle() int64 { return s.cycle }

// Step advances the machine by one cycle (SMT wrappers interleave threads at
// this granularity; single-thread callers normally use Run).
func (s *Sim) Step() { s.step() }

// Insts returns the number of correct-path instructions dispatched so far.
func (s *Sim) Insts() uint64 { return s.m.insts.Value() }

// UopCacheStats exposes the uop cache observables.
func (s *Sim) UopCacheStats() *uopcache.Stats { return s.oc.Stats }

// Predictor exposes the branch predictor (tests, MPKI probes).
func (s *Sim) Predictor() *bpred.Predictor { return s.pred }

// Hierarchy exposes the cache hierarchy (tests).
func (s *Sim) Hierarchy() *mem.Hierarchy { return s.hier }

// UopCache exposes the uop cache (tests, SMC experiments).
func (s *Sim) UopCache() *uopcache.Cache { return s.oc }

// InvalidateCodeLine performs an SMC invalidating probe against all uop
// structures for the 64B code line at addr.
func (s *Sim) InvalidateCodeLine(addr uint64) int {
	line := addr &^ uint64(63)
	n := s.oc.InvalidateCodeLine(line)
	s.lc.InvalidateRange(line, line+64)
	s.hier.L1I.Invalidate(line)
	return n
}

// PW ring-buffer accessors. Indices are relative to the queue head; callers
// never hold more than pwCount entries, so a single wrap subtraction suffices.

func (s *Sim) pwAt(i int) *fetch.PW {
	j := s.pwHead + i
	if j >= len(s.pwQ) {
		j -= len(s.pwQ)
	}
	return &s.pwQ[j]
}

func (s *Sim) pwPush(pw fetch.PW) {
	j := s.pwHead + s.pwCount
	if j >= len(s.pwQ) {
		j -= len(s.pwQ)
	}
	s.pwQ[j] = pw
	s.pwCount++
}

func (s *Sim) pwPopN(n int) {
	s.pwHead += n
	if s.pwHead >= len(s.pwQ) {
		s.pwHead -= len(s.pwQ)
	}
	s.pwCount -= n
}

func (s *Sim) pwClear() {
	s.pwHead, s.pwCount = 0, 0
}

// getItems/putItems recycle fGroup item slices. A group's items are fully
// copied into the uop queue when the group drains, so the slice can be reused
// the moment popGroup returns.

//uopvet:hotpath
func (s *Sim) getItems() []fItem {
	if n := len(s.itemFree); n > 0 {
		it := s.itemFree[n-1]
		s.itemFree = s.itemFree[:n-1]
		return it
	}
	return make([]fItem, 0, 8)
}

//uopvet:hotpath
func (s *Sim) putItems(items []fItem) {
	if cap(items) == 0 {
		return
	}
	s.itemFree = append(s.itemFree, items[:0])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
