package pipeline

import (
	"fmt"
	"math"
	"reflect"

	"uopsim/internal/isa"
	"uopsim/internal/trace"
)

// Sampling configures interval-sampled execution (RunSampled): instead of
// simulating every instruction of the measured region, the run is split
// into Intervals evenly spaced strides and only a WarmupInsts +
// IntervalInsts window at the end of each stride is cycle-simulated; the
// instructions between windows are fast-forwarded architecturally through
// the oracle walker, which costs an order of magnitude less per
// instruction than the cycle loop. Full-run metrics are extrapolated from
// the measured windows (see RunSampled).
//
// Sampling participates in design-point fingerprints when Enabled, so a
// sampled point and the full simulation of the same point can never share
// a cache blob. Fields added here must stay canonically encodable
// (runcache.Key) — the runcachesafe analyzer checks this type.
type Sampling struct {
	// Enabled turns interval sampling on. The zero value (disabled) leaves
	// RunSampled equivalent to RunMeasured.
	Enabled bool
	// Intervals is K, the number of measurement intervals (default 6).
	Intervals int
	// IntervalInsts is M, the measured instructions per interval (default
	// measure/50: 12% coverage with the default K). The defaults were
	// chosen on the Table II workloads as the best accuracy at ~4x
	// wall-clock: fewer, longer windows beat many short ones here because
	// the uop cache's content ages during each architectural skip and
	// every extra interval pays that re-priming transient again.
	IntervalInsts uint64
	// WarmupInsts is W, the cycle-simulated but unmeasured instructions
	// that precede each interval, re-priming the front end after the
	// fast-forward (default IntervalInsts/3).
	WarmupInsts uint64
}

// WithDefaults resolves zero fields against the measured run length.
// Fingerprints cover the resolved form, so a request that spells out the
// defaults and one that elides them address the same cache blob.
func (sp Sampling) WithDefaults(measure uint64) Sampling {
	if !sp.Enabled {
		return sp
	}
	if sp.Intervals <= 0 {
		sp.Intervals = 6
	}
	if sp.IntervalInsts == 0 {
		sp.IntervalInsts = measure / 50
		if sp.IntervalInsts == 0 {
			sp.IntervalInsts = 1
		}
	}
	if sp.WarmupInsts == 0 {
		sp.WarmupInsts = sp.IntervalInsts / 3
	}
	return sp
}

// Validate reports whether the resolved configuration fits the measured
// region: every interval's warmup+measure window must fit inside its
// stride. Call on the WithDefaults form.
func (sp Sampling) Validate(measure uint64) error {
	if !sp.Enabled {
		return nil
	}
	if sp.Intervals < 1 {
		return fmt.Errorf("pipeline: sampling needs at least one interval, got %d", sp.Intervals)
	}
	if sp.IntervalInsts < 1 {
		return fmt.Errorf("pipeline: sampling needs a positive interval length")
	}
	stride := measure / uint64(sp.Intervals)
	if sp.WarmupInsts+sp.IntervalInsts > stride {
		return fmt.Errorf("pipeline: sampling window (%d warmup + %d measured) exceeds the %d-instruction stride (measure %d / %d intervals)",
			sp.WarmupInsts, sp.IntervalInsts, stride, measure, sp.Intervals)
	}
	return nil
}

// Coverage is the measured fraction of the nominal run: K*M/measure.
func (sp Sampling) Coverage(measure uint64) float64 {
	if !sp.Enabled || measure == 0 {
		return 1
	}
	return float64(uint64(sp.Intervals)*sp.IntervalInsts) / float64(measure)
}

// FastForward advances the architectural state by n instructions without
// simulating cycles: it consumes n oracle records and functionally warms
// the long-lived microarchitectural state they would have touched — the
// branch direction tables, BTB, RAS and indirect predictor in program
// order, the instruction and data cache hierarchy, and the loop-buffer
// trainer — then squashes the front end and re-steers fetch at the next
// architectural PC. This is the SMARTS discipline: structures with state
// lifetimes far longer than any affordable warmup window (predictors,
// caches) are warmed continuously at functional cost, while the short-
// lived pipeline contents are discarded and re-primed by the next
// interval's detailed warmup. The back end needs no repair: it only ever
// holds correct-path uops, which retire naturally during that warmup.
//
// The uop cache and loop cache *contents* persist untouched across the
// skip — their fill paths are driven by fetch, which is exactly what the
// per-interval warmup window re-exercises.
//
// It returns how many records were actually consumed (short only on a
// finite replayed oracle).
func (s *Sim) FastForward(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	var skipped uint64
	lastLine := ^uint64(0)
	lastTarget := s.nextOraclePC
	for ; skipped < n && s.orOK; skipped++ {
		rec := s.orHead
		in := s.prog.Inst(rec.InstID)
		s.advanceOracle()
		s.nextOraclePC = rec.Next
		if s.OnConsume != nil {
			s.OnConsume(rec)
		}
		if line := in.Addr &^ uint64(63); line != lastLine {
			lastLine = line
			s.hier.PrefetchInst(line)
		}
		switch in.Class {
		case isa.ClassLoad, isa.ClassLoadOp:
			s.hier.Load(rec.MemAddr)
		case isa.ClassStore:
			s.hier.Store(rec.MemAddr)
		}
		if in.IsBranch() {
			s.warmBranch(in, rec, &lastTarget)
		}
	}
	s.flushFrontEnd(s.cycle, s.nextOraclePC, true)
	return skipped
}

// warmBranch trains the predictor stack with one skipped branch's
// architectural outcome, mirroring consumeCorrect's training sequence
// (without its statistics — skipped branches are not lookups). It also
// feeds the loop-buffer trainer with the architectural equivalent of the
// fetch-side signal: consecutive backward-taken iterations of one branch.
func (s *Sim) warmBranch(in *isa.Inst, rec trace.Rec, lastTarget *uint64) {
	switch in.Branch {
	case isa.BranchCall, isa.BranchIndirectCall:
		s.pred.ArchCall(in.End())
	case isa.BranchRet:
		s.pred.ArchRet()
	}
	switch in.Branch {
	case isa.BranchCond:
		s.pred.WarmCond(in.Addr, rec.Taken)
		s.pred.ArchShift(rec.Taken)
		if rec.Taken {
			s.pred.WarmTarget(in.Addr, in.Branch, in.Target, in.Len)
		}
	case isa.BranchJump, isa.BranchCall:
		s.pred.WarmTarget(in.Addr, in.Branch, in.Target, in.Len)
		s.pred.ArchShift(true)
	case isa.BranchRet:
		s.pred.WarmTarget(in.Addr, in.Branch, 0, in.Len)
		s.pred.ArchShift(true)
	case isa.BranchIndirect, isa.BranchIndirectCall:
		s.pred.WarmTarget(in.Addr, in.Branch, rec.Next, in.Len)
		s.pred.ArchShift(true)
	}

	taken := rec.Taken || in.Branch != isa.BranchCond
	if in.Branch == isa.BranchCond && rec.Taken && rec.Next <= in.Addr && *lastTarget == rec.Next {
		if s.lc.ObserveBackwardTaken(in.Addr, rec.Next) {
			s.captureLoopAt(rec.Next, in.Addr)
		}
	} else if taken {
		s.lc.ObserveOther()
	}
	if taken {
		*lastTarget = rec.Next
	}
}

// samplingInfo backs the sampling.* gauges registered by noteSampling.
type samplingInfo struct {
	sp        Sampling
	measure   uint64
	skipped   uint64
	simulated uint64
}

// NoteSampling publishes a run's sampling shape into the Sim's registry
// so every snapshot downstream (cache blobs, -metrics dumps, the daemon's
// responses) records how the numbers were obtained. RunSampled calls it;
// external sampled runners (the SMT pair) call it with their own tallies.
// Registration happens once; a re-sampled Sim updates the backing values.
func (s *Sim) NoteSampling(sp Sampling, measure, skipped, simulated uint64) {
	s.noteSampling(samplingInfo{sp: sp, measure: measure, skipped: skipped, simulated: simulated})
}

func (s *Sim) noteSampling(info samplingInfo) {
	first := s.sampling == nil
	if first {
		s.sampling = &samplingInfo{}
	}
	*s.sampling = info
	if !first {
		return
	}
	sc := s.reg.Scope("sampling")
	sc.RegisterGauge("intervals", func() float64 { return float64(s.sampling.sp.Intervals) })
	sc.RegisterGauge("interval_insts", func() float64 { return float64(s.sampling.sp.IntervalInsts) })
	sc.RegisterGauge("warmup_insts", func() float64 { return float64(s.sampling.sp.WarmupInsts) })
	sc.RegisterGauge("coverage", func() float64 { return s.sampling.sp.Coverage(s.sampling.measure) })
	sc.RegisterGauge("skipped_insts", func() float64 { return float64(s.sampling.skipped) })
	sc.RegisterGauge("simulated_insts", func() float64 { return float64(s.sampling.simulated) })
}

// AddSnapshotDelta accumulates the observable delta (b - a) into agg,
// field by field via reflection so a Snapshot field added later cannot be
// silently dropped from sampled aggregation.
func AddSnapshotDelta(agg *Snapshot, a, b Snapshot) {
	av, bv := reflect.ValueOf(a), reflect.ValueOf(b)
	gv := reflect.ValueOf(agg).Elem()
	for i := 0; i < gv.NumField(); i++ {
		g := gv.Field(i)
		switch g.Kind() {
		case reflect.Int64:
			g.SetInt(g.Int() + bv.Field(i).Int() - av.Field(i).Int())
		case reflect.Uint64:
			g.SetUint(g.Uint() + bv.Field(i).Uint() - av.Field(i).Uint())
		case reflect.Float64:
			g.SetFloat(g.Float() + bv.Field(i).Float() - av.Field(i).Float())
		default:
			panic(fmt.Sprintf("pipeline: Snapshot field %s has unsupported kind %s",
				gv.Type().Field(i).Name, g.Kind()))
		}
	}
}

// scaleRound scales a count to the full-run estimate, rounding to the
// nearest integer (deterministic: no accumulation order dependence).
func scaleRound(v uint64, scale float64) uint64 {
	return uint64(math.Round(float64(v) * scale))
}

// Extrapolate turns the summed per-interval observable deltas into
// full-run Metrics: rates (UPC, IPC, hit ratios, MPKI, latencies, power)
// are exact sample-weighted means computed by MetricsBetween over the
// aggregate; totals (cycles, instructions, uop/fill/redirect counts) are
// scaled by measure over the instructions actually measured.
func Extrapolate(agg Snapshot, measure uint64) Metrics {
	m := MetricsBetween(Snapshot{}, agg)
	if m.Insts == 0 {
		return m
	}
	scale := float64(measure) / float64(m.Insts)
	m.Cycles = int64(math.Round(float64(m.Cycles) * scale))
	m.Insts = scaleRound(m.Insts, scale)
	m.UopsOC = scaleRound(m.UopsOC, scale)
	m.UopsIC = scaleRound(m.UopsIC, scale)
	m.UopsLC = scaleRound(m.UopsLC, scale)
	m.Mispredicts = scaleRound(m.Mispredicts, scale)
	m.DecRedirects = scaleRound(m.DecRedirects, scale)
	m.Resyncs = scaleRound(m.Resyncs, scale)
	m.DecodedInsts = scaleRound(m.DecodedInsts, scale)
	m.OCFills = scaleRound(m.OCFills, scale)
	return m
}

// IntervalLead returns the architectural skip lengths before and after
// interval i's warmup+measure window inside its stride. Windows are placed
// at deterministic low-discrepancy (golden-ratio) offsets rather than a
// fixed stride position: fixed end-of-stride placement biases the estimate
// toward late-phase behavior under any monotone drift (uop cache still
// filling, footprint growing), and fixed any-position placement aliases
// against workload periodicity. The offsets use integer fixed-point
// arithmetic so placement is bit-identical across platforms.
func (sp Sampling) IntervalLead(i int, measure uint64) (pre, post uint64) {
	stride := measure / uint64(sp.Intervals)
	slack := stride - sp.WarmupInsts - sp.IntervalInsts
	// frac(i*phi) in 32-bit fixed point: 2654435769 = round(2^32/phi).
	pre = (uint64(uint32(uint64(i)*2654435769)) * slack) >> 32
	return pre, slack - pre
}

// RunSampled is the interval-sampled counterpart of RunMeasured: it skips
// the nominal warmup architecturally, then for each of sp.Intervals
// strides fast-forwards to the interval's window, cycle-simulates
// sp.WarmupInsts unmeasured instructions followed by sp.IntervalInsts
// measured ones, and extrapolates full-run Metrics from the aggregated
// interval deltas. A disabled sp falls back to full simulation.
func (s *Sim) RunSampled(warmup, measure uint64, sp Sampling) (Metrics, error) {
	if measure == 0 {
		return Metrics{}, errZeroMeasure
	}
	sp = sp.WithDefaults(measure)
	if err := sp.Validate(measure); err != nil {
		return Metrics{}, err
	}
	if !sp.Enabled {
		return s.RunMeasured(warmup, measure)
	}

	var agg Snapshot
	var skipped, simulated uint64
	skipped += s.FastForward(warmup)
	for i := 0; i < sp.Intervals; i++ {
		pre, post := sp.IntervalLead(i, measure)
		skipped += s.FastForward(pre)
		if err := s.Run(sp.WarmupInsts); err != nil {
			return Metrics{}, err
		}
		a := s.Snapshot()
		if err := s.Run(sp.IntervalInsts); err != nil {
			return Metrics{}, err
		}
		AddSnapshotDelta(&agg, a, s.Snapshot())
		simulated += sp.WarmupInsts + sp.IntervalInsts
		skipped += s.FastForward(post)
	}
	s.NoteSampling(sp, measure, skipped, simulated)
	return Extrapolate(agg, measure), nil
}
