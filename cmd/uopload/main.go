// Command uopload replays sweep-shaped request mixes against a running
// uopsimd: -n requests drawn (seeded shuffle) from -unique distinct design
// points, issued by -c concurrent clients, optionally paced to -rps. It
// reports latency percentiles, the per-resolution breakdown (simulated /
// memo / disk — the dedupe evidence), and the 429/retry tally, then
// fetches the daemon's /v1/stats engine counters. Exit status is nonzero
// if any request ultimately failed.
//
// Usage:
//
//	uopload -url http://localhost:8077 -n 50 -unique 10 -c 8
//	uopload -url http://localhost:8077 -mode sweep -n 50 -unique 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uopsim/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uopload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url        = flag.String("url", "http://localhost:8077", "uopsimd base URL")
		n          = flag.Int("n", 50, "total requests")
		unique     = flag.Int("unique", 10, "distinct design points in the mix")
		conc       = flag.Int("c", 8, "concurrent clients")
		rps        = flag.Int("rps", 0, "target request rate (0 = unpaced)")
		warmup     = flag.Uint64("warmup", 2_000, "warmup instructions per point")
		insts      = flag.Uint64("insts", 10_000, "measured instructions per point")
		workloads  = flag.String("workloads", "", "comma-separated workload mix (empty = default)")
		seed       = flag.Int64("seed", 1, "shuffle seed")
		retries    = flag.Int("retries", 3, "429 retries per request (negative disables)")
		retryDelay = flag.Duration("retry-delay", 0, "cap on per-retry sleep (0 = honor Retry-After)")
		mode       = flag.String("mode", "simulate", "simulate (per-request /v1/simulate) or sweep (one /v1/sweep batch)")
		timeout    = flag.Duration("timeout", 0, "per-request timeout forwarded as timeout_ms (0 = server cap)")
		sample     = flag.Bool("sample", false, "request interval-sampled simulation for every point")
		sampleK    = flag.Int("sample-intervals", 0, "sampling: measurement intervals per run (0 = server default)")
		sampleM    = flag.Uint64("sample-insts", 0, "sampling: measured instructions per interval (0 = server default)")
		sampleW    = flag.Uint64("sample-warmup", 0, "sampling: detailed-warmup instructions per interval (0 = server default)")
	)
	flag.Parse()

	cfg := server.LoadConfig{
		Requests:    *n,
		Unique:      *unique,
		Concurrency: *conc,
		RPS:         *rps,
		Warmup:      *warmup,
		Measure:     *insts,
		Seed:        *seed,
		Retries:     *retries,
		RetryDelay:  *retryDelay,
		TimeoutMS:   timeout.Milliseconds(),
	}
	if *workloads != "" {
		cfg.Workloads = strings.Split(*workloads, ",")
	}
	if *sample || *sampleK > 0 || *sampleM > 0 || *sampleW > 0 {
		cfg.Sampling = &server.SamplingRequest{
			Intervals:     *sampleK,
			IntervalInsts: *sampleM,
			WarmupInsts:   *sampleW,
		}
	}

	client := server.NewClient(*url)
	if err := client.Healthz(); err != nil {
		return fmt.Errorf("daemon not healthy at %s: %w", *url, err)
	}

	var (
		report server.LoadReport
		err    error
	)
	switch *mode {
	case "simulate":
		report, err = server.RunLoad(client, cfg)
	case "sweep":
		report, err = server.RunSweep(client, cfg)
	default:
		return fmt.Errorf("unknown -mode %q (simulate or sweep)", *mode)
	}
	if err != nil {
		return err
	}
	fmt.Print(report)

	if stats, serr := client.Stats(); serr == nil {
		fmt.Printf("engine %s\n", stats.Engine)
	} else {
		fmt.Fprintf(os.Stderr, "uopload: stats fetch failed: %v\n", serr)
	}
	if report.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", report.Failed, report.Requests)
	}
	return nil
}
