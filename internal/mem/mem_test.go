package mem

import "testing"

func newH() *Hierarchy { return New(DefaultConfig()) }

func TestLoadLatencyLevels(t *testing.T) {
	h := newH()
	addr := uint64(0x10_0000)
	if lat := h.Load(addr); lat != LatMem {
		t.Errorf("cold load latency = %d, want %d", lat, LatMem)
	}
	if lat := h.Load(addr); lat != LatL1 {
		t.Errorf("warm load latency = %d, want %d", lat, LatL1)
	}
}

func TestLoadL2Path(t *testing.T) {
	h := newH()
	addr := uint64(0x20_0000)
	h.Load(addr)
	// Evict from L1D by filling its set with conflicting lines (L1D: 32KB,
	// 4-way, 128 sets -> stride 128*64 = 8192 maps to the same set).
	for i := 1; i <= 4; i++ {
		h.Load(addr + uint64(i*8192))
	}
	if lat := h.Load(addr); lat != LatL2 {
		t.Errorf("L1-evicted load latency = %d, want %d (L2 hit)", lat, LatL2)
	}
}

func TestFetchInstWarm(t *testing.T) {
	h := newH()
	line := uint64(0x40_0000)
	if lat := h.FetchInst(line); lat == 0 {
		t.Error("cold instruction fetch should cost something")
	}
	if lat := h.FetchInst(line); lat != 0 {
		t.Errorf("warm L1I fetch latency = %d, want 0", lat)
	}
}

func TestIPrefetchNextLines(t *testing.T) {
	h := newH()
	line := uint64(0x50_0000)
	h.FetchInst(line)
	// DefaultConfig prefetches 2 sequential lines; they should now be L1I
	// hits.
	if lat := h.FetchInst(line + 64); lat != 0 {
		t.Errorf("next line not prefetched: latency %d", lat)
	}
	if lat := h.FetchInst(line + 128); lat != 0 {
		t.Errorf("second next line not prefetched: latency %d", lat)
	}
}

func TestExplicitPrefetch(t *testing.T) {
	h := newH()
	line := uint64(0x60_0000)
	h.PrefetchInst(line)
	if lat := h.FetchInst(line); lat != 0 {
		t.Errorf("prefetched line fetch latency = %d", lat)
	}
}

func TestStoreInstallsLine(t *testing.T) {
	h := newH()
	addr := uint64(0x70_0000)
	h.Store(addr)
	if lat := h.Load(addr); lat != LatL1 {
		t.Errorf("load after store latency = %d, want %d", lat, LatL1)
	}
}

func TestDRAMAccounting(t *testing.T) {
	h := newH()
	h.DPrefetch = false // isolate demand accesses from prefetch traffic
	before := h.DRAMAccesses()
	h.Load(0x123_0000)
	if h.DRAMAccesses() != before+1 {
		t.Errorf("cold miss should hit DRAM once, got %d", h.DRAMAccesses()-before)
	}
	h.Load(0x123_0000)
	if h.DRAMAccesses() != before+1 {
		t.Error("warm load must not touch DRAM")
	}
}

func TestDataPrefetchNextLine(t *testing.T) {
	h := newH()
	addr := uint64(0x80_0000)
	h.Load(addr) // miss; prefetches addr+64 into L2
	// Evict nothing; next-line access should now be at most L2 latency.
	if lat := h.Load(addr + 64); lat > LatL2 {
		t.Errorf("next-line load latency = %d, want <= %d", lat, LatL2)
	}
}

func TestLatencyOrdering(t *testing.T) {
	if !(LatL1 < LatL2 && LatL2 < LatL3 && LatL3 < LatMem) {
		t.Fatal("latency constants must be monotone")
	}
}
