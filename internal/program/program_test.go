package program

import (
	"testing"
	"testing/quick"

	"uopsim/internal/isa"
	"uopsim/internal/rng"
)

func buildSimple(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(0x1000, isa.DefaultMix(), rng.New(1))
	b0 := b.AddBranchBlock(3, isa.BranchCond, -1) // patched below
	b1 := b.AddBlock(2)
	b2 := b.AddBranchBlock(1, isa.BranchJump, b0)
	b.SetTarget(b0, b2)
	p, err := b.Finish(b0)
	if err != nil {
		t.Fatal(err)
	}
	_ = b1
	return p
}

func TestBuilderLayoutContiguity(t *testing.T) {
	p := buildSimple(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x1000 {
		t.Errorf("base = %#x", p.Base)
	}
	prevEnd := p.Base
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Addr != prevEnd {
			t.Fatalf("inst %d at %#x, expected %#x", i, in.Addr, prevEnd)
		}
		prevEnd = in.End()
	}
	if p.Limit != prevEnd {
		t.Errorf("limit mismatch")
	}
}

func TestAddressLookup(t *testing.T) {
	p := buildSimple(t)
	for i := range p.Insts {
		in := &p.Insts[i]
		got := p.At(in.Addr)
		if got == nil || got.ID != in.ID {
			t.Fatalf("At(%#x) failed", in.Addr)
		}
	}
	if p.At(p.Base+1) != nil && p.Insts[0].Len > 1 {
		t.Error("mid-instruction address should not resolve")
	}
	if p.At(p.Limit) != nil {
		t.Error("address past the end should not resolve")
	}
}

func TestNextWalksSequentially(t *testing.T) {
	p := buildSimple(t)
	in := p.At(p.Entry)
	count := 1
	for {
		next := p.Next(in)
		if next == nil {
			break
		}
		if next.Addr != in.End() {
			t.Fatalf("Next returned non-adjacent inst")
		}
		in = next
		count++
	}
	if count != p.NumInsts() {
		t.Errorf("walked %d of %d insts", count, p.NumInsts())
	}
}

func TestBranchTargetsPatched(t *testing.T) {
	p := buildSimple(t)
	// Block 0 ends in a conditional branch to block 2's first inst.
	blk0 := &p.Blocks[0]
	br := &p.Insts[blk0.First+blk0.N-1]
	if !br.IsBranch() || br.Branch != isa.BranchCond {
		t.Fatal("block 0 should end in a conditional branch")
	}
	blk2 := &p.Blocks[2]
	want := p.Insts[blk2.First].Addr
	if br.Target != want {
		t.Errorf("target = %#x, want %#x", br.Target, want)
	}
}

func TestBlockOf(t *testing.T) {
	p := buildSimple(t)
	for bi := range p.Blocks {
		blk := &p.Blocks[bi]
		for j := blk.First; j < blk.First+blk.N; j++ {
			if got := p.BlockOf(uint32(j)); got == nil || got.ID != bi {
				t.Fatalf("BlockOf(%d) = %v, want block %d", j, got, bi)
			}
		}
	}
}

func TestFinishErrors(t *testing.T) {
	b := NewBuilder(0, isa.DefaultMix(), rng.New(1))
	if _, err := b.Finish(0); err == nil {
		t.Error("empty program should fail")
	}

	b2 := NewBuilder(0, isa.DefaultMix(), rng.New(1))
	b2.AddBlock(1)
	if _, err := b2.Finish(5); err == nil {
		t.Error("invalid entry block should fail")
	}

	// Direct branch without a target must fail at Finish.
	b3 := NewBuilder(0, isa.DefaultMix(), rng.New(1))
	b3.AddBranchBlock(1, isa.BranchJump, -1)
	if _, err := b3.Finish(0); err == nil {
		t.Error("unpatched direct branch should fail")
	}
}

func TestSetTargetValidation(t *testing.T) {
	b := NewBuilder(0, isa.DefaultMix(), rng.New(1))
	blk := b.AddBlock(1) // no branch
	b.SetTarget(blk, 0)
	if _, err := b.Finish(0); err == nil {
		t.Error("SetTarget on branchless block should surface an error")
	}
}

func TestInteriorBranchesRejected(t *testing.T) {
	// Validate() must reject a block with a branch before its last inst.
	b := NewBuilder(0, isa.DefaultMix(), rng.New(1))
	b.AddBranchBlock(2, isa.BranchRet, -1)
	p, err := b.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: make an interior instruction a branch.
	p.Insts[0].Class = isa.ClassBranch
	p.Insts[0].Branch = isa.BranchJump
	if err := p.Validate(); err == nil {
		t.Error("interior branch should fail validation")
	}
}

// TestRandomProgramsValidate synthesizes many random small CFGs and checks
// the builder's output always validates.
func TestRandomProgramsValidate(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		b := NewBuilder(0x4000, isa.DefaultMix(), r.Derive(1))
		sr := r.Derive(2)
		n := sr.Range(2, 20)
		var condBlocks []int
		for i := 0; i < n; i++ {
			switch sr.Intn(3) {
			case 0:
				b.AddBlock(sr.Range(1, 6))
			case 1:
				condBlocks = append(condBlocks, b.AddBranchBlock(sr.Range(1, 6), isa.BranchCond, 0))
			default:
				b.AddBranchBlock(sr.Range(0, 4), isa.BranchRet, -1)
			}
		}
		total := b.NumBlocks()
		for _, cb := range condBlocks {
			b.SetTarget(cb, sr.Intn(total))
		}
		p, err := b.Finish(0)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegisterDiscipline(t *testing.T) {
	// Destinations of block bodies should stay in the local register
	// partition except for the occasional global write, and conditional
	// blocks end with the counter idiom.
	b := NewBuilder(0, isa.DefaultMix(), rng.New(3))
	b.AddBranchBlock(6, isa.BranchCond, 0)
	b.SetTarget(0, 0)
	p, err := b.Finish(0)
	if err != nil {
		t.Fatal(err)
	}
	blk := &p.Blocks[0]
	last := &p.Insts[blk.First+blk.N-2] // last body inst (before branch)
	if last.Class != isa.ClassALU || last.Dest != last.Src1 || last.Dest >= numGlobalRegs {
		t.Errorf("counter idiom missing: %+v", last)
	}
}
