// Command tracegen generates a dynamic instruction trace from a synthetic
// workload, writes it in the compact binary format of internal/trace, and
// can inspect existing trace files.
//
// Usage:
//
//	tracegen -workload bm_cc -insts 1000000 -o bm_cc.trace
//	tracegen -inspect bm_cc.trace -workload bm_cc
package main

import (
	"flag"
	"fmt"
	"os"

	"uopsim/internal/isa"
	"uopsim/internal/trace"
	"uopsim/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "bm_cc", "Table II workload name")
		insts   = flag.Uint64("insts", 1_000_000, "instructions to generate")
		out     = flag.String("o", "", "output trace file (generate mode)")
		inspect = flag.String("inspect", "", "trace file to summarize (inspect mode)")
	)
	flag.Parse()

	wl, err := workload.Shared(*name)
	if err != nil {
		fatal(err)
	}

	if *inspect != "" {
		if err := inspectTrace(*inspect, wl); err != nil {
			fatal(err)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("need -o FILE to generate or -inspect FILE to summarize"))
	}
	if err := generate(*out, wl, *insts); err != nil {
		fatal(err)
	}
}

func generate(path string, wl *workload.Workload, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	walker := workload.NewWalker(wl)
	for i := uint64(0); i < n; i++ {
		rec, _ := walker.Next()
		if err := tw.Write(rec); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s (program: %d static insts, %d KB code)\n",
		tw.Count(), path, wl.Program.NumInsts(), wl.Program.CodeBytes()>>10)
	return nil
}

func inspectTrace(path string, wl *workload.Workload) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var n, branches, taken, mem uint64
	classCounts := map[isa.Class]uint64{}
	for {
		rec, ok := tr.Next()
		if !ok {
			break
		}
		if int(rec.InstID) >= wl.Program.NumInsts() {
			return fmt.Errorf("record %d references inst %d outside program (wrong -workload?)", n, rec.InstID)
		}
		in := wl.Program.Inst(rec.InstID)
		n++
		classCounts[in.Class]++
		if in.IsBranch() {
			branches++
			if rec.Taken {
				taken++
			}
		}
		if rec.MemAddr != 0 {
			mem++
		}
	}
	if err := tr.Err(); err != nil {
		return err
	}
	fmt.Printf("%s: %d records\n", path, n)
	fmt.Printf("  branches: %d (%.1f%%), taken %.1f%%\n", branches,
		100*float64(branches)/float64(n), 100*float64(taken)/float64(branches))
	fmt.Printf("  memory references: %d (%.1f%%)\n", mem, 100*float64(mem)/float64(n))
	fmt.Printf("  class mix:\n")
	for c := isa.ClassALU; c <= isa.ClassBranch; c++ {
		if classCounts[c] > 0 {
			fmt.Printf("    %-8s %6.2f%%\n", c, 100*float64(classCounts[c])/float64(n))
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
